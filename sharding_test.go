package nanobench

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// collectItems drains a stream into an index-ordered slice, requiring
// in-order delivery.
func collectItems(t *testing.T, ch <-chan BatchItem, n int) []BatchItem {
	t.Helper()
	items := make([]BatchItem, 0, n)
	for it := range ch {
		if it.Index != len(items) {
			t.Fatalf("item delivered out of order: index %d at position %d", it.Index, len(items))
		}
		items = append(items, it)
	}
	if len(items) != n {
		t.Fatalf("stream delivered %d items, want %d", len(items), n)
	}
	return items
}

// TestStreamShardedMatchesStream pins the shard-merge determinism claim
// at the session level: StreamSharded is byte-identical to Stream at any
// shard count, including configs whose duplicates span shard boundaries
// (the global-dedupe-before-sharding invariant — each duplicate must be
// seeded by the lowest index sharing its content, exactly as a single
// whole-batch run seeds it).
func TestStreamShardedMatchesStream(t *testing.T) {
	distinct := sweepConfigs(6)
	// Interleave duplicates so every contiguous shard split separates at
	// least one duplicate pair from its representative.
	cfgs := []Config{
		distinct[0], distinct[1], distinct[2], distinct[0],
		distinct[3], distinct[1], distinct[4], distinct[5],
		distinct[2], distinct[0],
	}

	baseline := openT(t, WithCPU("Skylake"), WithSeed(42))
	want := collectItems(t, baseline.Stream(context.Background(), cfgs), len(cfgs))
	wantJSON := make([]string, len(want))
	for i, it := range want {
		if it.Err != nil {
			t.Fatalf("baseline item %d failed: %v", i, it.Err)
		}
		data, err := json.Marshal(it.Result)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON[i] = string(data)
	}

	for _, shards := range []int{1, 2, 3, 4, 7, 100} {
		// A fresh session per shard count: no cross-run cache assists.
		sess := openT(t, WithCPU("Skylake"), WithSeed(42))
		got := collectItems(t, sess.StreamSharded(context.Background(), cfgs, shards), len(cfgs))
		for i, it := range got {
			if it.Err != nil {
				t.Fatalf("shards=%d: item %d failed: %v", shards, i, it.Err)
			}
			data, err := json.Marshal(it.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != wantJSON[i] {
				t.Errorf("shards=%d: item %d differs from unsharded Stream:\nsharded:   %s\nunsharded: %s",
					shards, i, data, wantJSON[i])
			}
		}
	}
}

func TestStreamShardedCancel(t *testing.T) {
	sess := openT(t, WithCPU("Skylake"), WithSeed(42), WithParallelism(1))
	cfgs := sweepConfigs(8)
	for i := range cfgs {
		cfgs[i].LoopCount = 1500 + i // seconds of simulated work per config
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := sess.StreamSharded(ctx, cfgs, 3)
	cancel()
	// The channel must close promptly, every undelivered config carrying
	// the context's error.
	n := 0
	for it := range ch {
		n++
		if it.Err == nil && it.Result == nil {
			t.Errorf("item %d has neither result nor error", it.Index)
		}
	}
	if n != len(cfgs) {
		t.Errorf("canceled stream delivered %d items, want all %d", n, len(cfgs))
	}
}

func TestSweepHeterogeneousJobs(t *testing.T) {
	sw := NewSweep(Config{NMeasurements: 2}).
		CPUs("Skylake", "Haswell").
		Modes(Kernel, User).
		Asm("add rax, rbx").
		Unroll(10, 100)

	if !sw.Heterogeneous() {
		t.Fatal("CPU/mode sweep not reported heterogeneous")
	}
	if n := sw.Len(); n != 8 {
		t.Fatalf("Len = %d, want 2 CPUs x 2 modes x 2 unrolls", n)
	}
	// Bare-config expansion refuses heterogeneous sweeps.
	if _, err := sw.Configs(); err == nil {
		t.Error("Configs accepted a heterogeneous sweep")
	}

	jobs, err := sw.Jobs("", Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("Jobs expanded %d entries, want 8", len(jobs))
	}
	// CPU-major, then mode, then the inner config order.
	wantCPU := []string{"Skylake", "Skylake", "Skylake", "Skylake", "Haswell", "Haswell", "Haswell", "Haswell"}
	wantMode := []Mode{Kernel, Kernel, User, User, Kernel, Kernel, User, User}
	wantUnroll := []int{10, 100, 10, 100, 10, 100, 10, 100}
	for i, j := range jobs {
		if j.CPU != wantCPU[i] || j.Mode != wantMode[i] || j.Cfg.UnrollCount != wantUnroll[i] {
			t.Errorf("job %d = (%s, %v, unroll %d), want (%s, %v, unroll %d)",
				i, j.CPU, j.Mode, j.Cfg.UnrollCount, wantCPU[i], wantMode[i], wantUnroll[i])
		}
		if j.Cfg.NMeasurements != 2 {
			t.Errorf("job %d lost the base config (n_measurements %d)", i, j.Cfg.NMeasurements)
		}
	}
}

func TestSweepJobsDefaults(t *testing.T) {
	// A homogeneous sweep expands under the given defaults — and an empty
	// default CPU is preserved verbatim for layers that resolve their own
	// default (the server's session registry).
	sw := NewSweep(Config{}).Asm("add rax, rbx").Unroll(10, 100)
	jobs, err := sw.Jobs("", User)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2", len(jobs))
	}
	for i, j := range jobs {
		if j.CPU != "" || j.Mode != User {
			t.Errorf("job %d = (%q, %v), want defaults preserved", i, j.CPU, j.Mode)
		}
	}

	cfgs, err := sw.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != len(jobs) {
		t.Fatalf("Configs and Jobs disagree on the family size: %d vs %d", len(cfgs), len(jobs))
	}
	for i := range cfgs {
		if !reflect.DeepEqual(cfgs[i], jobs[i].Cfg) {
			t.Errorf("config %d: Jobs and Configs expansions differ:\n%+v\n%+v", i, jobs[i].Cfg, cfgs[i])
		}
	}
}

func TestSweepCPUsModesJSONRoundTrip(t *testing.T) {
	sw := NewSweep(Config{WarmUpCount: 1}).
		CPUs("Skylake", "Haswell").
		Modes(User, Kernel).
		Asm("add rax, rbx").
		Unroll(10, 100)

	data, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	// The wire form carries the dimensions under their documented keys.
	var wire map[string]json.RawMessage
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if _, ok := wire["cpus"]; !ok {
		t.Errorf("wire form has no cpus key: %s", data)
	}
	if string(wire["modes"]) != `["user","kernel"]` {
		t.Errorf("modes wire form = %s", wire["modes"])
	}

	var back Sweep
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal(%s): %v", data, err)
	}
	want, err := sw.Jobs("", Kernel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Jobs("", Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("job families differ after round trip\nwant: %+v\ngot:  %+v", want, got)
	}
	if back.Len() != sw.Len() {
		t.Errorf("Len: got %d, want %d", back.Len(), sw.Len())
	}

	// An unknown mode name is a decode-time error, like Config's decoder.
	if err := json.Unmarshal([]byte(`{"modes":["hypervisor"],"asm":["nop"]}`), &back); err == nil {
		t.Error("unknown mode name decoded without error")
	}
}
