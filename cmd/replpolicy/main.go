// Command replpolicy infers the replacement policy of a cache set by
// comparing hardware-counter measurements of random access sequences with
// simulations of candidate policies (Section VI-C1).
//
//	replpolicy -cpu Skylake -level 2 -set 520
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"nanobench"
	"nanobench/internal/cachetools"
	"nanobench/internal/uarch"
)

func main() {
	var (
		cpuName = flag.String("cpu", "Skylake", "simulated CPU model ("+uarch.NameList()+")")
		level   = flag.Int("level", 2, "cache level (1, 2, or 3)")
		set     = flag.Int("set", 520, "set index")
		cbox    = flag.Int("cbox", 0, "C-Box / L3 slice")
		maxSeq  = flag.Int("max_seqs", 200, "maximum number of measured sequences")
		seed    = flag.Int64("seed", nanobench.DefaultBatchSeed, "machine seed")
	)
	flag.Parse()

	s, err := nanobench.Open(nanobench.WithCPU(*cpuName), nanobench.WithSeed(*seed))
	fatal(err)
	r, err := s.NewRunner()
	fatal(err)
	tool, err := cachetools.New(r)
	fatal(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := tool.InferPolicyContext(ctx, cachetools.Level(*level), *cbox, *set,
		cachetools.InferOptions{MaxSequences: *maxSeq, Seed: *seed})
	fatal(err)

	fmt.Printf("%s L%d set %d (slice %d): %d sequences measured\n",
		s.CPUName(), *level, *set, *cbox, res.SequencesUsed)
	switch {
	case len(res.Classes) == 0:
		fmt.Println("no deterministic candidate matches all measurements")
		fmt.Println("(probabilistic or adaptive policy; try the age-graph tool)")
	case len(res.Classes) == 1:
		fmt.Printf("policy identified: %s\n", strings.Join(res.Classes[0], " ≡ "))
	default:
		fmt.Println("remaining candidates (not uniquely distinguished):")
		for _, c := range res.Classes {
			fmt.Printf("  %s\n", strings.Join(c, " ≡ "))
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "replpolicy:", err)
		os.Exit(1)
	}
}
