// Command cacheseq runs an access sequence in a chosen cache set and
// reports how many of the measured accesses hit (Section VI-C).
//
//	cacheseq -cpu IvyBridge -level 3 -set 768 -cbox 0 \
//	         -seq "<wbinvd> B0 B1 B2 B0? B1? B2?"
package main

import (
	"flag"
	"fmt"
	"os"

	"nanobench"
	"nanobench/internal/cachetools"
	"nanobench/internal/uarch"
)

func main() {
	var (
		cpuName = flag.String("cpu", "Skylake", "simulated CPU model ("+uarch.NameList()+")")
		level   = flag.Int("level", 3, "cache level (1, 2, or 3)")
		set     = flag.Int("set", 768, "set index (within the slice for L3)")
		cbox    = flag.Int("cbox", 0, "C-Box / L3 slice")
		seqStr  = flag.String("seq", "", "access sequence, e.g. \"<wbinvd> B0 B1 B0?\" ('?' = measured)")
		seed    = flag.Int64("seed", nanobench.DefaultBatchSeed, "machine seed")
	)
	flag.Parse()
	if *seqStr == "" {
		fmt.Fprintln(os.Stderr, "cacheseq: need -seq")
		os.Exit(2)
	}

	seq, err := cachetools.ParseSeq(*seqStr)
	fatal(err)
	s, err := nanobench.Open(nanobench.WithCPU(*cpuName), nanobench.WithSeed(*seed))
	fatal(err)
	r, err := s.NewRunner()
	fatal(err)
	tool, err := cachetools.New(r)
	fatal(err)

	res, err := tool.RunSeq(cachetools.Level(*level), *cbox, *set, seq)
	fatal(err)
	fmt.Printf("sequence: %s\n", seq)
	fmt.Printf("L%d set %d (slice %d): %d hits, %d misses of %d measured accesses\n",
		*level, *set, *cbox, res.Hits, res.Misses(), res.Measured)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cacheseq:", err)
		os.Exit(1)
	}
}
