// Command nanobench mirrors the nanoBench.sh / kernel-nanoBench.sh shell
// interfaces of the original tool on the simulated machine.
//
// The Section III-A example:
//
//	nanobench -asm "mov R14, [R14]" -asm_init "mov [R14], R14" \
//	          -config configs/cfg_Skylake.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nanobench"
	"nanobench/internal/kmod"
	"nanobench/internal/nano"
	"nanobench/internal/uarch"
)

func main() {
	var (
		asm     = flag.String("asm", "", "assembler code of the benchmark (Intel syntax)")
		asmInit = flag.String("asm_init", "", "assembler code executed once before the measurement")
		codeF   = flag.String("code", "", "file with raw machine code for the benchmark")
		initF   = flag.String("code_init", "", "file with raw machine code for the init part")
		cfgF    = flag.String("config", "", "performance counter configuration file")
		unroll  = flag.Int("unroll_count", nanobench.DefaultUnrollCount, "number of copies of the benchmark code")
		loop    = flag.Int("loop_count", nanobench.DefaultLoopCount, "loop iterations around the unrolled code (0: no loop)")
		nMeas   = flag.Int("n_measurements", nanobench.DefaultNMeasurements, "number of measured runs")
		warmUp  = flag.Int("warm_up_count", nanobench.DefaultWarmUpCount, "initial runs excluded from the result")
		agg     = flag.String("agg", "min", "aggregate function: min, med, avg")
		basic   = flag.Bool("basic_mode", false, "second run uses no benchmark code instead of 2x unrolling")
		noMem   = flag.Bool("no_mem", false, "store counter values in registers instead of memory")
		usr     = flag.Bool("usr", false, "use the user-space version")
		cpuName = flag.String("cpu", "Skylake", "simulated CPU model ("+uarch.NameList()+")")
		seed    = flag.Int64("seed", nanobench.DefaultBatchSeed, "machine seed")
	)
	flag.Parse()

	if *asm == "" && *codeF == "" {
		fmt.Fprintln(os.Stderr, "nanobench: need -asm or -code")
		flag.Usage()
		os.Exit(2)
	}

	mode := nanobench.Kernel
	if *usr {
		mode = nanobench.User
	}
	s, err := nanobench.Open(
		nanobench.WithCPU(*cpuName),
		nanobench.WithMode(mode),
		nanobench.WithSeed(*seed),
	)
	fatal(err)

	aggregate, err := nano.ParseAggregate(*agg)
	fatal(err)

	var events []nanobench.EventSpec
	if *cfgF != "" {
		data, err := os.ReadFile(*cfgF)
		fatal(err)
		events, err = nanobench.ParseEvents(string(data))
		fatal(err)
	}

	cfg := nanobench.Config{
		UnrollCount:   *unroll,
		LoopCount:     *loop,
		NMeasurements: *nMeas,
		WarmUpCount:   *warmUp,
		Aggregate:     aggregate,
		BasicMode:     *basic,
		NoMem:         *noMem,
		Events:        events,
	}
	cfg.Code = loadCode(*asm, *codeF)
	cfg.CodeInit = loadCode(*asmInit, *initF)

	if *usr {
		// A dedicated runner keeps -seed meaning the raw machine seed, as
		// in the kernel path below and every prior release (Session.Run
		// would derive a batch-index seed, changing user-mode
		// timer-interrupt jitter for the same flag value).
		r, err := s.NewRunner()
		fatal(err)
		res, err := r.RunContext(context.Background(), cfg)
		fatal(err)
		fmt.Print(res)
		return
	}

	// Kernel space: go through the simulated kernel module's virtual
	// files, exactly like kernel-nanoBench.sh does, on a machine from the
	// session.
	m, err := s.NewMachine()
	fatal(err)
	k, err := kmod.Load(m)
	fatal(err)
	fatal(k.WriteFile("/sys/nb/code", cfg.Code))
	if len(cfg.CodeInit) > 0 {
		fatal(k.WriteFile("/sys/nb/init", cfg.CodeInit))
	}
	fatal(k.WriteFile("/sys/nb/unroll_count", []byte(fmt.Sprint(*unroll))))
	fatal(k.WriteFile("/sys/nb/loop_count", []byte(fmt.Sprint(*loop))))
	fatal(k.WriteFile("/sys/nb/n_measurements", []byte(fmt.Sprint(*nMeas))))
	fatal(k.WriteFile("/sys/nb/warm_up_count", []byte(fmt.Sprint(*warmUp))))
	fatal(k.WriteFile("/sys/nb/agg", []byte(*agg)))
	if *basic {
		fatal(k.WriteFile("/sys/nb/basic_mode", []byte("1")))
	}
	if *noMem {
		fatal(k.WriteFile("/sys/nb/no_mem", []byte("1")))
	}
	if *cfgF != "" {
		data, _ := os.ReadFile(*cfgF)
		fatal(k.WriteFile("/sys/nb/config", data))
	}
	out, err := k.ReadFile("/proc/nanoBench")
	fatal(err)
	fmt.Print(string(out))
}

func loadCode(asm, file string) []byte {
	if asm != "" {
		code, err := nanobench.Asm(asm)
		fatal(err)
		return code
	}
	if file != "" {
		data, err := os.ReadFile(file)
		fatal(err)
		return data
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nanobench:", err)
		os.Exit(1)
	}
}
