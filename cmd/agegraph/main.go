// Command agegraph produces the age-graph data of Section VI-C2 / Figure 1
// in gnuplot-ready form: for every block of an access sequence, the number
// of trials in which the block still hit after n fresh blocks.
//
// The paper's Figure 1 (Ivy Bridge, L3 sets 768-831, sequence
// "<WBINVD> B0 ... B11"):
//
//	agegraph -cpu IvyBridge -level 3 -set 768 -max_fresh 200 -trials 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nanobench"
	"nanobench/internal/cachetools"
	"nanobench/internal/uarch"
)

func main() {
	var (
		cpuName  = flag.String("cpu", "IvyBridge", "simulated CPU model ("+uarch.NameList()+")")
		level    = flag.Int("level", 3, "cache level (1, 2, or 3)")
		set      = flag.Int("set", 768, "set index")
		cbox     = flag.Int("cbox", 0, "C-Box / L3 slice")
		seqStr   = flag.String("seq", "", "prefix sequence (default: <wbinvd> B0..B<assoc-1>)")
		maxFresh = flag.Int("max_fresh", 200, "maximum number of fresh blocks")
		step     = flag.Int("step", 8, "fresh-block step")
		trials   = flag.Int("trials", 16, "trials per data point")
		seed     = flag.Int64("seed", nanobench.DefaultBatchSeed, "machine seed")
	)
	flag.Parse()

	s, err := nanobench.Open(nanobench.WithCPU(*cpuName), nanobench.WithSeed(*seed))
	fatal(err)
	r, err := s.NewRunner()
	fatal(err)
	tool, err := cachetools.New(r)
	fatal(err)

	lvl := cachetools.Level(*level)
	prefixStr := *seqStr
	if prefixStr == "" {
		var sb strings.Builder
		sb.WriteString("<wbinvd>")
		for b := 0; b < tool.Assoc(lvl); b++ {
			fmt.Fprintf(&sb, " B%d", b)
		}
		prefixStr = sb.String()
	}
	prefix, err := cachetools.ParseSeq(prefixStr)
	fatal(err)

	fmt.Fprintf(os.Stderr, "agegraph: %s L%d set %d slice %d, prefix %q, %d trials\n",
		s.CPUName(), *level, *set, *cbox, prefixStr, *trials)
	g, err := tool.AgeGraphFor(lvl, *cbox, *set, prefix, *maxFresh, *step, *trials)
	fatal(err)
	fmt.Print(g.Format())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "agegraph:", err)
		os.Exit(1)
	}
}
