// nanobenchd serves the nanobench Session API over HTTP/JSON: single
// configs, heterogeneous batches, streaming sweeps, and asynchronous
// jobs behind a bounded admission queue, with one session per (CPU
// model, privilege mode) behind a shared LRU-bounded result cache.
// Prometheus metrics are served on /metrics. The wire schema is
// documented in docs/API.md.
//
//	go run nanobench/cmd/nanobenchd -addr :8080
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"config": {"asm": "add rax, rbx", "n_measurements": 3}}'
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"sweep": {"sweep": {"asm": ["add rax, rbx"], "unrolls": [10, 100]}}}'
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes,
// in-flight requests drain, queued jobs are parked canceled, and
// running jobs are waited for (all bounded by -drain) before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"nanobench"
	"nanobench/internal/jobs"
	"nanobench/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Int64("seed", nanobench.DefaultBatchSeed, "root seed for per-job machine seed derivation")
		parallelism = flag.Int("parallelism", 0, "concurrently simulated machines per session (0: all cores)")
		warmUp      = flag.Int("warm_up_count", nanobench.DefaultWarmUpCount, "session-wide default warm-up run count")
		cacheMax    = flag.Int("cache_entries", 4096, "shared result cache bound in evaluations (0: unbounded)")
		maxBatch    = flag.Int("max_batch", server.DefaultMaxBatch, "max configs per request")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
		jobWorkers  = flag.Int("job_workers", jobs.DefaultWorkers, "async job worker pool size")
		jobQueue    = flag.Int("job_queue", jobs.DefaultQueueSize, "async job admission queue bound (full queue answers 429)")
		jobWait     = flag.Duration("job_wait", 0, "how long a submission may wait for a queue slot before the 429 (0: fail fast)")
		jobTTL      = flag.Duration("job_ttl", jobs.DefaultTTL, "how long finished job records are retained for result retrieval")
		sweepShards = flag.Int("sweep_shards", server.DefaultSweepShards, "shards an async sweep job fans out across (byte-identical at any value)")
	)
	flag.Parse()

	srv, err := server.New(server.Options{
		Seed:            *seed,
		Parallelism:     *parallelism,
		WarmUp:          *warmUp,
		CacheMaxEntries: *cacheMax,
		MaxBatch:        *maxBatch,
		JobWorkers:      *jobWorkers,
		JobQueueSize:    *jobQueue,
		JobMaxWait:      *jobWait,
		JobTTL:          *jobTTL,
		SweepShards:     *sweepShards,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("nanobenchd listening on %s (seed %d, cache bound %d)", *addr, *seed, *cacheMax)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining %d in-flight request(s)", srv.InFlight())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
	// With the listener closed, drain the job subsystem: queued jobs are
	// parked canceled, running ones get the remainder of the budget.
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("job drain: %v", err)
	}
	log.Print("nanobenchd stopped")
}
