// nanobenchd serves the nanobench Session API over HTTP/JSON: single
// configs, heterogeneous batches, and streaming sweeps, with one session
// per (CPU model, privilege mode) behind a shared LRU-bounded result
// cache. The wire schema is documented in docs/API.md.
//
//	go run nanobench/cmd/nanobenchd -addr :8080
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/run \
//	    -d '{"config": {"asm": "add rax, rbx", "n_measurements": 3}}'
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes, and
// in-flight evaluations drain (bounded by -drain) before the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"nanobench"
	"nanobench/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Int64("seed", nanobench.DefaultBatchSeed, "root seed for per-job machine seed derivation")
		parallelism = flag.Int("parallelism", 0, "concurrently simulated machines per session (0: all cores)")
		warmUp      = flag.Int("warm_up_count", nanobench.DefaultWarmUpCount, "session-wide default warm-up run count")
		cacheMax    = flag.Int("cache_entries", 4096, "shared result cache bound in evaluations (0: unbounded)")
		maxBatch    = flag.Int("max_batch", server.DefaultMaxBatch, "max configs per request")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	srv, err := server.New(server.Options{
		Seed:            *seed,
		Parallelism:     *parallelism,
		WarmUp:          *warmUp,
		CacheMaxEntries: *cacheMax,
		MaxBatch:        *maxBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("nanobenchd listening on %s (seed %d, cache bound %d)", *addr, *seed, *cacheMax)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining %d in-flight request(s)", srv.InFlight())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("nanobenchd stopped")
}
