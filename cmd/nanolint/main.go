// Command nanolint runs the repository's custom static-analysis suite
// (internal/lint): detrand, ctxfirst, errenvelope, and benchguard, each
// scoped to the packages whose invariants it encodes (docs/LINTS.md).
//
// Usage:
//
//	nanolint [-checks detrand,ctxfirst] [-list] [packages]
//
// Packages default to ./... resolved from the current directory. The
// exit status is 1 when any diagnostic survives the //nanolint:allow
// waivers, making it a CI gate: `make lint` runs it over the module.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nanobench/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	rules := lint.DefaultRules()
	if *checks != "" {
		want := make(map[string]bool)
		for _, c := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var filtered []lint.Rule
		for _, r := range rules {
			if want[r.Analyzer.Name] {
				filtered = append(filtered, r)
				delete(want, r.Analyzer.Name)
			}
		}
		for c := range want {
			fmt.Fprintf(os.Stderr, "nanolint: unknown check %q\n", c)
			os.Exit(2)
		}
		rules = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanolint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(wd, rules, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanolint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nanolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
