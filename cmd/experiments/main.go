// Command experiments regenerates the tables and figures of the nanoBench
// paper's evaluation (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results). The experiments package drives
// the public Session API — its machines, sweeps, and caches go through
// nanobench.Open — so this binary doubles as an end-to-end exercise of
// the facade.
//
//	experiments -all          # everything (several minutes)
//	experiments -table1       # Table I only
//	experiments -fig1 -quick  # a fast, low-resolution Figure 1
package main

import (
	"flag"
	"fmt"
	"os"

	"nanobench/internal/experiments"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		example = flag.Bool("example", false, "E1: Section III-A example output")
		timing  = flag.Bool("timing", false, "E2: nanoBench execution time")
		table1  = flag.Bool("table1", false, "E3: Table I replacement policies")
		fig1    = flag.Bool("fig1", false, "E4: Figure 1 age graph")
		serial  = flag.Bool("serialization", false, "E5: CPUID vs LFENCE")
		instr   = flag.Bool("instr", false, "E6: instruction characterization sweep")
		loopUn  = flag.Bool("loopunroll", false, "E7: loops vs unrolling")
		noMem   = flag.Bool("nomem", false, "E8: noMem mode ablation")
		accur   = flag.Bool("accuracy", false, "E9: kernel vs user accuracy")
		alloc   = flag.Bool("alloc", false, "E10: contiguous allocation")
		dueling = flag.Bool("dueling", false, "E11: set-dueling leader detection")
		quick   = flag.Bool("quick", false, "reduced parameters for the slow experiments")
		workers = flag.Int("workers", 0, "parallel simulated machines for the sweeps (0 = all cores)")
	)
	flag.Parse()
	experiments.Workers = *workers

	w := os.Stdout
	any := false
	step := func(enabled bool, f func() error) {
		if !*all && !enabled {
			return
		}
		any = true
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	step(*example, func() error { _, err := experiments.ExampleL1Latency(w); return err })
	step(*timing, func() error { _, _, err := experiments.NanoBenchTiming(w, nil); return err })
	step(*table1, func() error { _, err := experiments.Table1(w, *quick); return err })
	step(*fig1, func() error { _, err := experiments.Figure1(w, *quick); return err })
	step(*serial, func() error { _, _, err := experiments.Serialization(w); return err })
	step(*instr, func() error { _, _, _, err := experiments.InstructionTable(w, *quick); return err })
	step(*loopUn, func() error { _, err := experiments.LoopVsUnroll(w); return err })
	step(*noMem, func() error { _, _, err := experiments.NoMemAblation(w); return err })
	step(*accur, func() error { _, _, err := experiments.KernelVsUserAccuracy(w); return err })
	step(*alloc, func() error { _, _, _, err := experiments.ContiguousAlloc(w); return err })
	step(*dueling, func() error { _, err := experiments.SetDueling(w, *quick); return err })

	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
