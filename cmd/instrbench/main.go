// Command instrbench runs the case-study-I sweep (Section V): latency,
// throughput, and port usage for every instruction variant in the table,
// in the style of uops.info. By default the per-variant evaluations fan
// out across all cores through the batch scheduler; -serial reproduces
// the single shared-machine loop.
//
//	instrbench -cpu Skylake
//	instrbench -cpu Skylake -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"nanobench/internal/instbench"
	"nanobench/internal/nano"
	"nanobench/internal/sched"
	"nanobench/internal/sim/machine"
	"nanobench/internal/uarch"
)

func main() {
	var (
		cpuName = flag.String("cpu", "Skylake", "simulated CPU model ("+uarch.NameList()+")")
		seed    = flag.Int64("seed", 42, "machine seed (root seed in parallel mode)")
		usr     = flag.Bool("usr", false, "use the user-space version (noisier)")
		workers = flag.Int("workers", 0, "parallel simulated machines (0 = all cores)")
		serial  = flag.Bool("serial", false, "run serially on one shared machine")
	)
	flag.Parse()

	cpu, err := uarch.ByName(*cpuName)
	fatal(err)
	mode := machine.Kernel
	if *usr {
		mode = machine.User
	}

	var ms []instbench.Measurement
	if *serial {
		m, err := cpu.NewMachine(*seed)
		fatal(err)
		r, err := nano.NewRunner(m, mode)
		fatal(err)
		ms, err = instbench.MeasureAll(r)
		fatal(err)
	} else {
		ms, err = instbench.Sweep(cpu.Name, mode, sched.Options{
			Workers: *workers, RootSeed: *seed, Cache: sched.NewCache(),
		})
		fatal(err)
	}
	fmt.Printf("# %s (%s), %d instruction variants\n", cpu.Name, cpu.Model, len(ms))
	fmt.Print(instbench.FormatTable(ms))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrbench:", err)
		os.Exit(1)
	}
}
