// Command instrbench runs the case-study-I sweep (Section V): latency,
// throughput, and port usage for every instruction variant in the table,
// in the style of uops.info.
//
//	instrbench -cpu Skylake
package main

import (
	"flag"
	"fmt"
	"os"

	"nanobench/internal/instbench"
	"nanobench/internal/nano"
	"nanobench/internal/sim/machine"
	"nanobench/internal/uarch"
)

func main() {
	var (
		cpuName = flag.String("cpu", "Skylake", "simulated CPU model ("+uarch.NameList()+")")
		seed    = flag.Int64("seed", 42, "machine seed")
		usr     = flag.Bool("usr", false, "use the user-space version (noisier)")
	)
	flag.Parse()

	cpu, err := uarch.ByName(*cpuName)
	fatal(err)
	m, err := cpu.NewMachine(*seed)
	fatal(err)
	mode := machine.Kernel
	if *usr {
		mode = machine.User
	}
	r, err := nano.NewRunner(m, mode)
	fatal(err)

	ms, err := instbench.MeasureAll(r)
	fatal(err)
	fmt.Printf("# %s (%s), %d instruction variants\n", cpu.Name, cpu.Model, len(ms))
	fmt.Print(instbench.FormatTable(ms))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrbench:", err)
		os.Exit(1)
	}
}
