// Command instrbench runs the case-study-I sweep (Section V): latency,
// throughput, and port usage for every instruction variant in the table,
// in the style of uops.info. By default the per-variant evaluations fan
// out across all cores through the batch scheduler, and Ctrl-C cancels
// the sweep promptly; -serial reproduces the single shared-machine loop
// (not cancellable mid-variant — Ctrl-C terminates the process).
//
//	instrbench -cpu Skylake
//	instrbench -cpu Skylake -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"nanobench"
	"nanobench/internal/instbench"
	"nanobench/internal/sched"
	"nanobench/internal/uarch"
)

func main() {
	var (
		cpuName = flag.String("cpu", "Skylake", "simulated CPU model ("+uarch.NameList()+")")
		seed    = flag.Int64("seed", nanobench.DefaultBatchSeed, "machine seed (root seed in parallel mode)")
		usr     = flag.Bool("usr", false, "use the user-space version (noisier)")
		workers = flag.Int("workers", 0, "parallel simulated machines (0 = all cores)")
		serial  = flag.Bool("serial", false, "run serially on one shared machine")
	)
	flag.Parse()

	cpu, err := uarch.ByName(*cpuName)
	fatal(err)
	mode := nanobench.Kernel
	if *usr {
		mode = nanobench.User
	}

	var ms []instbench.Measurement
	if *serial {
		// One shared machine, driven through a facade session. No signal
		// context here: MeasureAll is not cancellable, so Ctrl-C keeps its
		// default terminate-the-process behavior.
		s, err := nanobench.Open(
			nanobench.WithCPU(cpu.Name),
			nanobench.WithMode(mode),
			nanobench.WithSeed(*seed),
		)
		fatal(err)
		r, err := s.NewRunner()
		fatal(err)
		ms, err = instbench.MeasureAll(r)
		fatal(err)
	} else {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		ms, err = instbench.SweepVariantsContext(ctx, cpu.Name, mode, instbench.Variants(),
			sched.Options{Workers: *workers, RootSeed: *seed, Cache: sched.NewCache()})
		stop()
		fatal(err)
	}
	fmt.Printf("# %s (%s), %d instruction variants\n", cpu.Name, cpu.Model, len(ms))
	fmt.Print(instbench.FormatTable(ms))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrbench:", err)
		os.Exit(1)
	}
}
