package nanobench

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

func openT(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(WithCPU("NoSuchCPU")); err == nil {
		t.Error("expected an error for an unknown CPU model")
	}
	if _, err := Open(WithWarmUp(-2)); err == nil {
		t.Error("expected an error for a negative warm-up count")
	}
	if _, err := Open(WithWarmUp(NoWarmUp)); err != nil {
		t.Errorf("WithWarmUp(NoWarmUp) must be accepted as explicit zero: %v", err)
	}
	s := openT(t)
	if s.CPUName() != "Skylake" || s.Mode() != Kernel || s.Seed() != DefaultBatchSeed {
		t.Errorf("defaults: cpu=%s mode=%v seed=%d", s.CPUName(), s.Mode(), s.Seed())
	}
}

// quickstartConfig is the paper's Section III-A example.
func quickstartConfig() Config {
	return Config{
		Code:        MustAsm("mov R14, [R14]"),
		CodeInit:    MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events:      MustParseEvents("D1.01 MEM_LOAD_RETIRED.L1_HIT"),
	}
}

// TestSessionQuickstart pins the Section III-A quickstart through both
// remaining entry points — Session.Run and a Session-built direct Runner
// (the successor of the removed v1 free functions) — and checks they
// print identical counter values, preserving the contract the v1 shims
// used to carry.
func TestSessionQuickstart(t *testing.T) {
	s := openT(t, WithCPU("Skylake"), WithSeed(42))
	r, err := s.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	runnerRes, err := r.Run(quickstartConfig())
	if err != nil {
		t.Fatal(err)
	}
	sessRes, err := s.Run(context.Background(), quickstartConfig())
	if err != nil {
		t.Fatal(err)
	}

	if !runnerRes.Equal(sessRes) {
		t.Errorf("runner and session results differ:\n%vvs\n%v", runnerRes, sessRes)
	}
	if runnerRes.String() != sessRes.String() {
		t.Errorf("printed output differs:\n%q\nvs\n%q", runnerRes, sessRes)
	}
	if v := sessRes.MustGet("Core cycles"); math.Abs(v-4.0) > 0.1 {
		t.Errorf("L1 latency = %.2f, want 4 (paper III-A)", v)
	}
	if v := sessRes.MustGet("MEM_LOAD_RETIRED.L1_HIT"); math.Abs(v-1.0) > 0.05 {
		t.Errorf("L1 hits = %.2f, want 1", v)
	}
}

// sweepConfigs builds distinct configs (no two dedupe to one evaluation).
func sweepConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = Config{
			Code:          MustAsm("mov r14, [r14]"),
			CodeInit:      MustAsm("mov [r14], r14"),
			UnrollCount:   20 + i,
			LoopCount:     200,
			NMeasurements: 2,
		}
	}
	return cfgs
}

// TestSessionJSONStableAcrossParallelism is the facade-level golden
// check: MarshalJSON output is byte-identical across parallelism levels
// and across cold/cached runs.
func TestSessionJSONStableAcrossParallelism(t *testing.T) {
	cfgs := sweepConfigs(6)
	marshal := func(res []*Result) []string {
		out := make([]string, len(res))
		for i, r := range res {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(b)
		}
		return out
	}

	s1 := openT(t, WithParallelism(1))
	base, err := s1.RunBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON := marshal(base)

	s8 := openT(t, WithParallelism(8))
	par, err := s8.RunBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range marshal(par) {
		if j != baseJSON[i] {
			t.Errorf("config %d: JSON differs between 1 and 8 workers:\n%s\nvs\n%s", i, baseJSON[i], j)
		}
	}

	// Warm re-run on the same session: served from cache, still identical.
	again, err := s8.RunBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range marshal(again) {
		if j != baseJSON[i] {
			t.Errorf("config %d: cached JSON differs:\n%s\nvs\n%s", i, baseJSON[i], j)
		}
	}
	if hits, _ := s8.CacheStats(); hits == 0 {
		t.Error("warm re-run recorded no cache hits")
	}
}

// TestSessionStreamCancelMidSweep pins the acceptance criteria: a Stream
// consumer that cancels mid-sweep gets the completed prefix in order, a
// closed channel, no leaked worker goroutines, and the session cache
// still holds the completed entries.
func TestSessionStreamCancelMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	s := openT(t, WithParallelism(1))
	// One light config followed by heavy ones, on a single worker: item 0
	// arrives quickly and the remaining work is long enough (seconds in
	// total) that the consumer's cancel always lands mid-sweep — the
	// runner checks the context between measurement runs, so the worker
	// aborts within one run's latency even on a single-core machine.
	cfgs := sweepConfigs(12)
	cfgs[0].LoopCount = 20
	for i := 1; i < len(cfgs); i++ {
		cfgs[i].LoopCount = 1500
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := s.Stream(ctx, cfgs)

	next, completed, aborted := 0, 0, 0
	for it := range ch {
		if it.Index != next {
			t.Fatalf("stream delivered index %d, want %d", it.Index, next)
		}
		next++
		switch {
		case it.Err == nil && it.Result != nil:
			completed++
		case errors.Is(it.Err, context.Canceled):
			aborted++
		default:
			t.Fatalf("item %d: unexpected state (res=%v err=%v)", it.Index, it.Result, it.Err)
		}
		if next == 1 {
			cancel() // cancel after the first delivered result
		}
	}
	// The channel closed (range exited) having delivered every index.
	if next != len(cfgs) {
		t.Fatalf("stream delivered %d of %d items before closing", next, len(cfgs))
	}
	if completed < 1 {
		t.Error("cancellation discarded the completed prefix")
	}
	if aborted < 1 {
		t.Error("no item carried the cancellation error (cancel landed too late to test anything)")
	}
	// The cache kept every completed evaluation.
	if got := s.Cache().Len(); got != completed {
		t.Errorf("cache holds %d entries, want %d completed evaluations", got, completed)
	}

	// No leaked workers: the goroutine count returns to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before stream, %d after drain", before, now)
	}
}

// TestSessionSampleRetention: WithSampleRetention(false) strips the raw
// per-run samples from every evaluated metric while the aggregated
// values match a retaining session's bit for bit, and the two forms
// occupy distinct cache entries (DropSamples is part of the content key).
func TestSessionSampleRetention(t *testing.T) {
	cfg := quickstartConfig()

	full, err := openT(t).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lean := openT(t, WithSampleRetention(false))
	dropped, err := lean.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	fm, dm := full.Metrics(), dropped.Metrics()
	if len(fm) != len(dm) {
		t.Fatalf("metric count differs: %d vs %d", len(fm), len(dm))
	}
	for i := range fm {
		if dm[i].Value != fm[i].Value {
			t.Errorf("%s: value %v, want %v", dm[i].Name, dm[i].Value, fm[i].Value)
		}
		if len(fm[i].Samples) == 0 {
			t.Errorf("%s: retaining session kept no samples", fm[i].Name)
		}
		if len(dm[i].Samples) != 0 {
			t.Errorf("%s: sample-free session retained %d samples", dm[i].Name, len(dm[i].Samples))
		}
	}

	// A config that sets DropSamples itself drops samples even in a
	// retaining session.
	cfg.DropSamples = true
	own, err := openT(t).Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range own.Metrics() {
		if len(m.Samples) != 0 {
			t.Errorf("%s: per-config DropSamples retained %d samples", m.Name, len(m.Samples))
		}
	}
}

func TestSessionWarmUpDefault(t *testing.T) {
	s := openT(t, WithWarmUp(3))
	jobs := s.jobs([]Config{
		{Code: MustAsm("nop")},                        // inherits the session default
		{Code: MustAsm("nop"), WarmUpCount: 1},        // keeps its own
		{Code: MustAsm("nop"), WarmUpCount: NoWarmUp}, // explicitly zero
	})
	if jobs[0].Cfg.WarmUpCount != 3 {
		t.Errorf("config without warm-up got %d, want the session default 3", jobs[0].Cfg.WarmUpCount)
	}
	if jobs[1].Cfg.WarmUpCount != 1 {
		t.Errorf("config with explicit warm-up got %d, want 1", jobs[1].Cfg.WarmUpCount)
	}
	if got := jobs[2].Cfg.Canonical().WarmUpCount; got != 0 {
		t.Errorf("NoWarmUp canonicalized to %d, want 0 despite the session default", got)
	}
	if jobs[0].CPU != "Skylake" || jobs[0].Mode != Kernel {
		t.Errorf("job wiring: cpu=%s mode=%v", jobs[0].CPU, jobs[0].Mode)
	}
}

func TestSweepBuilder(t *testing.T) {
	sw := NewSweep(Config{WarmUpCount: 2, Aggregate: Avg}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(10, 20, 30)
	if sw.Len() != 6 {
		t.Fatalf("Len = %d, want 6", sw.Len())
	}
	cfgs, err := sw.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Fatalf("Configs = %d, want 6", len(cfgs))
	}
	// Code-major order: the first three share code[0] with unrolls 10/20/30.
	imul := MustAsm("imul rax, rbx")
	for i, cfg := range cfgs {
		wantUnroll := []int{10, 20, 30}[i%3]
		if cfg.UnrollCount != wantUnroll {
			t.Errorf("config %d: unroll %d, want %d", i, cfg.UnrollCount, wantUnroll)
		}
		isImul := string(cfg.Code) == string(imul)
		if isImul != (i >= 3) {
			t.Errorf("config %d: wrong code variant", i)
		}
		if cfg.WarmUpCount != 2 || cfg.Aggregate != Avg {
			t.Errorf("config %d: base fields lost (%+v)", i, cfg)
		}
	}

	// Builder errors are deferred to Configs, and Len agrees (0 configs).
	bad := NewSweep(Config{}).Asm("bogus instruction")
	if _, err := bad.Configs(); err == nil {
		t.Error("expected a deferred assembly error")
	}
	if bad.Len() != 0 {
		t.Errorf("erroneous sweep Len = %d, want 0", bad.Len())
	}
	// An empty sweep (no code anywhere) is rejected, with Len 0.
	empty := NewSweep(Config{}).Unroll(10)
	if _, err := empty.Configs(); err == nil {
		t.Error("expected an error for a sweep without benchmark code")
	}
	if empty.Len() != 0 {
		t.Errorf("codeless sweep Len = %d, want 0", empty.Len())
	}
}

func TestSessionRunSweep(t *testing.T) {
	s := openT(t, WithWarmUp(1))
	sw := NewSweep(Config{}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(50, 100)
	res, err := s.RunSweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d results for a 2x2 sweep", len(res))
	}
	// ADD chains at 1 cycle, IMUL at 3, independent of the unroll count.
	wants := []float64{1, 1, 3, 3}
	for i, want := range wants {
		if v := res[i].MustGet("Core cycles"); math.Abs(v-want) > 0.1 {
			t.Errorf("sweep config %d: %.2f cycles, want %.0f", i, v, want)
		}
	}
}

func TestSessionSharedAndDisabledCache(t *testing.T) {
	shared := NewBatchCache()
	cfg := Config{Code: MustAsm("nop"), UnrollCount: 10}

	a := openT(t, WithCache(shared))
	if _, err := a.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	b := openT(t, WithCache(shared))
	if _, err := b.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if hits, _ := shared.Stats(); hits == 0 {
		t.Error("second session missed the shared cache")
	}

	// WithCache(nil) disables caching entirely.
	c := openT(t, WithCache(nil))
	if c.Cache() != nil {
		t.Fatal("WithCache(nil) kept a cache")
	}
	if _, err := c.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("cacheless session recorded stats: %d hits, %d misses", hits, misses)
	}
}

func TestSessionRunBatchPartialOnCancel(t *testing.T) {
	s := openT(t, WithParallelism(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.RunBatch(ctx, sweepConfigs(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 3 {
		t.Fatalf("cancelled batch returned %d slots, want 3", len(res))
	}
}
