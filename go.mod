module nanobench

go 1.21
