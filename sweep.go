package nanobench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"nanobench/internal/nano"
)

// A Sweep declaratively generates a family of configurations from a base
// Config by varying one or more dimensions: the CPU model, the privilege
// mode, the benchmark code, the unroll count, the loop count, and the
// event set. Configs expands the cross product of every dimension that
// was given (dimensions left unset keep the base config's value) in a
// fixed order — CPU-major, then mode, then code, then unroll, then loop,
// then events — so sweep results line up with the expansion
// deterministically.
//
//	sw := nanobench.NewSweep(nanobench.Config{WarmUpCount: 1}).
//		Asm("add rax, rbx", "imul rax, rbx").
//		Unroll(10, 100, 1000)
//	results, err := session.RunSweep(ctx, sw)  // 2 × 3 configs
//
// A sweep that varies CPUs or Modes is heterogeneous: it expands to
// (CPU, mode, config) jobs rather than bare configs, so it is evaluated
// with Jobs (feeding a BatchExecutor, the /v1/sweep endpoint, or a
// /v1/jobs submission) instead of a single session's RunSweep.
//
// Builder methods accumulate; calling a dimension method twice appends
// further variants. An assembly error in Asm is deferred to Configs (and
// therefore to RunSweep), keeping call chains clean.
type Sweep struct {
	base    Config
	cpus    []string
	modes   []Mode
	codes   [][]byte
	unrolls []int
	loops   []int
	events  [][]EventSpec
	err     error
}

// NewSweep starts a sweep from a base configuration. Fields of the base
// not covered by a dimension (aggregate function, warm-up count, noMem,
// ...) apply to every generated config.
func NewSweep(base Config) *Sweep {
	return &Sweep{base: base}
}

// CPUs adds machine-model variants (names from the uarch catalog, e.g.
// "Skylake"). A sweep with CPU variants is heterogeneous — see Jobs.
func (s *Sweep) CPUs(names ...string) *Sweep {
	s.cpus = append(s.cpus, names...)
	return s
}

// Modes adds privilege-mode variants (User, Kernel). A sweep with mode
// variants is heterogeneous — see Jobs.
func (s *Sweep) Modes(modes ...Mode) *Sweep {
	s.modes = append(s.modes, modes...)
	return s
}

// Code adds benchmark-code variants (raw machine code).
func (s *Sweep) Code(codes ...[]byte) *Sweep {
	s.codes = append(s.codes, codes...)
	return s
}

// Asm adds benchmark-code variants from Intel-syntax assembly sources.
// Assembly errors surface at Configs/RunSweep time.
func (s *Sweep) Asm(srcs ...string) *Sweep {
	for _, src := range srcs {
		code, err := Asm(src)
		if err != nil && s.err == nil {
			s.err = fmt.Errorf("nanobench: sweep: %w", err)
		}
		s.codes = append(s.codes, code)
	}
	return s
}

// Unroll adds unroll-count variants.
func (s *Sweep) Unroll(counts ...int) *Sweep {
	s.unrolls = append(s.unrolls, counts...)
	return s
}

// Loop adds loop-count variants (0 means no loop; Section III-F).
func (s *Sweep) Loop(counts ...int) *Sweep {
	s.loops = append(s.loops, counts...)
	return s
}

// Events adds event-set variants (each set is measured in its own
// evaluation, e.g. to sweep counter configurations past the programmable
// counter limit explicitly).
func (s *Sweep) Events(sets ...[]EventSpec) *Sweep {
	s.events = append(s.events, sets...)
	return s
}

// Len returns the number of configs Configs will generate, or 0 when
// Configs would return an error (deferred Asm error, no benchmark code).
// The count saturates at math.MaxInt when the cross product overflows —
// still ordered correctly against any sane batch limit.
func (s *Sweep) Len() int {
	if s.err != nil {
		return 0
	}
	if len(s.codes) == 0 && len(s.base.Code) == 0 && len(s.base.CodeInit) == 0 {
		return 0
	}
	return crossProduct(len(s.cpus), len(s.modes), len(s.codes), len(s.unrolls), len(s.loops), len(s.events))
}

// Heterogeneous reports whether the sweep varies the CPU model or the
// privilege mode. Heterogeneous sweeps expand with Jobs; Configs (and a
// single session's RunSweep) refuse them.
func (s *Sweep) Heterogeneous() bool {
	return len(s.cpus) > 0 || len(s.modes) > 0
}

// crossProduct multiplies the dimension sizes, treating 0 as an unset
// dimension (size 1) and saturating at math.MaxInt on overflow.
func crossProduct(dims ...int) int {
	n := 1
	for _, d := range dims {
		if d == 0 {
			continue
		}
		if n > math.MaxInt/d {
			return math.MaxInt
		}
		n *= d
	}
	return n
}

// Err returns the first deferred builder error, if any.
func (s *Sweep) Err() error { return s.err }

// sweepJSON is the stable wire form of a Sweep, documented in
// docs/API.md: the base config in Config's wire form, then one array per
// dimension. Code variants travel as base64 ("codes") or, on decode
// only, as Intel-syntax assembly sources ("asm"); event sets are arrays
// of configuration-file lines, one inner array per set.
type sweepJSON struct {
	Base    *Config    `json:"base,omitempty"`
	CPUs    []string   `json:"cpus,omitempty"`
	Modes   []string   `json:"modes,omitempty"`
	Codes   [][]byte   `json:"codes,omitempty"`
	Asm     []string   `json:"asm,omitempty"`
	Unrolls []int      `json:"unrolls,omitempty"`
	Loops   []int      `json:"loops,omitempty"`
	Events  [][]string `json:"events,omitempty"`
}

// MarshalJSON encodes the sweep in the documented wire form. Assembly
// variants added with Asm are emitted as their assembled machine code
// (base64): the wire form captures the expanded family, not the builder
// calls. A sweep carrying a deferred builder error does not marshal.
func (s *Sweep) MarshalJSON() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	sj := sweepJSON{
		CPUs:    s.cpus,
		Codes:   s.codes,
		Unrolls: s.unrolls,
		Loops:   s.loops,
	}
	for _, m := range s.modes {
		sj.Modes = append(sj.Modes, m.String())
	}
	if !s.base.IsZero() {
		base := s.base
		sj.Base = &base
	}
	for _, set := range s.events {
		lines := nano.EventLines(set)
		if lines == nil {
			lines = []string{} // an empty set stays a set, not a JSON null
		}
		sj.Events = append(sj.Events, lines)
	}
	return json.Marshal(sj)
}

// UnmarshalJSON decodes the wire form into a ready-to-run sweep,
// replacing any previous state. Like Config's decoder it is strict:
// unknown fields are an error. Assembly errors in "asm" entries are
// deferred to Configs/RunSweep, exactly as with the Asm builder method.
func (s *Sweep) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sj sweepJSON
	if err := dec.Decode(&sj); err != nil {
		return fmt.Errorf("nanobench: sweep: %w", err)
	}
	out := Sweep{cpus: sj.CPUs, unrolls: sj.Unrolls, loops: sj.Loops}
	for _, name := range sj.Modes {
		mode, err := ParseMode(name)
		if err != nil {
			return fmt.Errorf("nanobench: sweep: %w", err)
		}
		out.modes = append(out.modes, mode)
	}
	if sj.Base != nil {
		out.base = *sj.Base
	}
	out.Code(sj.Codes...)
	out.Asm(sj.Asm...)
	for _, set := range sj.Events {
		evs, err := nano.ParseEventLines(set)
		if err != nil {
			return fmt.Errorf("nanobench: sweep: %w", err)
		}
		out.events = append(out.events, evs)
	}
	*s = out
	return nil
}

// Configs expands the sweep into its config family, in the deterministic
// code-major / unroll / loop / events order. A heterogeneous sweep (CPU
// or mode variants) cannot expand to bare configs — use Jobs.
func (s *Sweep) Configs() ([]Config, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.Heterogeneous() {
		return nil, errors.New("nanobench: sweep: heterogeneous sweep (CPUs/Modes variants); expand with Jobs instead of Configs")
	}
	codes := s.codes
	if len(codes) == 0 {
		if len(s.base.Code) == 0 && len(s.base.CodeInit) == 0 {
			return nil, errors.New("nanobench: sweep: no benchmark code (base config empty and no Code/Asm variants)")
		}
		codes = [][]byte{s.base.Code}
	}
	unrolls := s.unrolls
	if len(unrolls) == 0 {
		unrolls = []int{s.base.UnrollCount}
	}
	loops := s.loops
	if len(loops) == 0 {
		loops = []int{s.base.LoopCount}
	}
	events := s.events
	if len(events) == 0 {
		events = [][]EventSpec{s.base.Events}
	}

	// The saturated product guards the capacity hint against overflow;
	// genuinely astronomical families are the caller's (or the server's
	// MaxBatch check's) problem, not a panic here.
	capHint := crossProduct(len(codes), len(unrolls), len(loops), len(events))
	if capHint == math.MaxInt {
		capHint = 0
	}
	out := make([]Config, 0, capHint)
	for _, code := range codes {
		for _, unroll := range unrolls {
			for _, loop := range loops {
				for _, evs := range events {
					cfg := s.base
					cfg.Code = code
					cfg.UnrollCount = unroll
					cfg.LoopCount = loop
					cfg.Events = evs
					out = append(out, cfg)
				}
			}
		}
	}
	return out, nil
}

// Jobs expands the sweep into (CPU, mode, config) jobs, in the
// deterministic CPU-major / mode / code / unroll / loop / events order.
// Dimensions left unset inherit the given defaults (an empty defaultCPU
// is preserved for layers that resolve their own default, like the
// server's session registry). This is the expansion heterogeneous sweeps
// evaluate through — a BatchExecutor, the /v1/sweep endpoint, or an
// asynchronous /v1/jobs submission; a homogeneous sweep expands to the
// same configs Configs returns, each under the default CPU and mode.
func (s *Sweep) Jobs(defaultCPU string, defaultMode Mode) ([]BatchJob, error) {
	cpus := s.cpus
	if len(cpus) == 0 {
		cpus = []string{defaultCPU}
	}
	modes := s.modes
	if len(modes) == 0 {
		modes = []Mode{defaultMode}
	}
	// Reuse the config expansion for the inner dimensions.
	inner := *s
	inner.cpus, inner.modes = nil, nil
	cfgs, err := inner.Configs()
	if err != nil {
		return nil, err
	}
	capHint := crossProduct(len(cpus), len(modes), len(cfgs))
	if capHint == math.MaxInt {
		capHint = 0
	}
	out := make([]BatchJob, 0, capHint)
	for _, cpu := range cpus {
		for _, mode := range modes {
			for _, cfg := range cfgs {
				out = append(out, BatchJob{CPU: cpu, Mode: mode, Cfg: cfg})
			}
		}
	}
	return out, nil
}
