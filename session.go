package nanobench

import (
	"context"
	"fmt"
	"sync"

	"nanobench/internal/nano"
	"nanobench/internal/sched"
	"nanobench/internal/uarch"
)

// A Session evaluates microbenchmarks on one CPU model in one privilege
// mode. It owns its machine pool (one independently-seeded simulated
// machine per in-flight evaluation), its scheduler, and its result cache;
// two sessions never share mutable state unless they were given the same
// cache via WithCache. A Session is safe for concurrent use.
//
// All evaluation methods take a context.Context: cancellation or a
// deadline aborts between individual benchmark runs, completed results
// are kept (partial results on cancellation), and no worker goroutine
// outlives the sweep beyond the evaluation it was simulating.
type Session struct {
	cpu         CPU
	mode        Mode
	seed        int64
	warmUp      int
	dropSamples bool
	cache       *BatchCache
	exec        *BatchExecutor
}

// sessionOptions collects the functional options of Open.
type sessionOptions struct {
	cpuName     string
	mode        Mode
	seed        int64
	parallelism int
	warmUp      int
	retain      bool
	cache       *BatchCache
	cacheSet    bool
}

// Option configures a Session at Open time.
type Option func(*sessionOptions)

// WithCPU selects the machine model (default "Skylake"; see CPUNames).
func WithCPU(name string) Option {
	return func(o *sessionOptions) { o.cpuName = name }
}

// WithMode selects user- or kernel-space operation (default Kernel, like
// the paper's kernel module).
func WithMode(mode Mode) Option {
	return func(o *sessionOptions) { o.mode = mode }
}

// WithSeed sets the root seed per-evaluation machine seeds derive from
// (default DefaultBatchSeed). The derivation depends only on the root
// seed and the config's batch index, never on scheduling.
func WithSeed(seed int64) Option {
	return func(o *sessionOptions) { o.seed = seed }
}

// WithParallelism bounds the number of concurrently simulated machines;
// 0 or negative means runtime.NumCPU(). Results are byte-identical for
// any parallelism level.
func WithParallelism(n int) Option {
	return func(o *sessionOptions) { o.parallelism = n }
}

// WithCache supplies the session's result cache — pass a shared
// NewBatchCache to let several sessions reuse each other's evaluations,
// or nil to disable caching entirely. By default every session gets its
// own private cache.
func WithCache(c *BatchCache) Option {
	return func(o *sessionOptions) { o.cache = c; o.cacheSet = true }
}

// WithWarmUp sets a session-wide default warm-up count: configs that
// leave WarmUpCount at zero inherit it (configs that set their own keep
// it, and WarmUpCount: NoWarmUp requests explicitly zero warm-up runs).
// The default is DefaultWarmUpCount, i.e. no warm-up runs.
func WithWarmUp(n int) Option {
	return func(o *sessionOptions) { o.warmUp = n }
}

// WithSampleRetention controls whether Results keep the raw per-run
// samples behind each aggregated metric value (default true). With
// retention off, every config the session evaluates gets
// Config.DropSamples set: metrics carry only their aggregate, which for
// million-config sweeps cuts the result-cache footprint and the
// deep-copy cost of every cache hit. Configs that set DropSamples
// themselves drop their samples regardless of the session setting.
func WithSampleRetention(retain bool) Option {
	return func(o *sessionOptions) { o.retain = retain }
}

// Open builds a session. The CPU model is validated eagerly, so an
// unknown name fails here rather than on the first Run.
func Open(opts ...Option) (*Session, error) {
	o := sessionOptions{
		cpuName: "Skylake",
		mode:    Kernel,
		seed:    DefaultBatchSeed,
		warmUp:  DefaultWarmUpCount,
		retain:  true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	cpu, err := uarch.ByName(o.cpuName)
	if err != nil {
		return nil, fmt.Errorf("nanobench: open: %w", err)
	}
	if o.warmUp == NoWarmUp {
		o.warmUp = 0 // the explicit-zero sentinel is as good as the default
	}
	if o.warmUp < 0 {
		return nil, fmt.Errorf("nanobench: open: negative warm-up count %d", o.warmUp)
	}
	cache := o.cache
	if !o.cacheSet {
		cache = sched.NewCache()
	}
	return &Session{
		cpu:         cpu,
		mode:        o.mode,
		seed:        o.seed,
		warmUp:      o.warmUp,
		dropSamples: !o.retain,
		cache:       cache,
		exec: sched.New(sched.Options{
			Workers:  o.parallelism,
			RootSeed: o.seed,
			Cache:    cache,
		}),
	}, nil
}

// CPUName returns the session's machine model name.
func (s *Session) CPUName() string { return s.cpu.Name }

// Mode returns the session's privilege mode.
func (s *Session) Mode() Mode { return s.mode }

// Seed returns the session's root seed.
func (s *Session) Seed() int64 { return s.seed }

// Cache returns the session's result cache (nil when caching is
// disabled).
func (s *Session) Cache() *BatchCache { return s.cache }

// Run evaluates one configuration and returns its typed result. It is
// equivalent to a one-element RunBatch: the evaluation runs on a fresh
// machine seeded for batch index 0, and repeated identical Runs are
// served from the session cache.
func (s *Session) Run(ctx context.Context, cfg Config) (*Result, error) {
	res, err := s.RunBatch(ctx, []Config{cfg})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunBatch evaluates the configurations in parallel across the session's
// machine pool and returns the results in config order, byte-identical
// for any parallelism level. Failed configs leave a nil entry and their
// errors are joined into the returned error; on context cancellation the
// completed results are still returned alongside the context error.
func (s *Session) RunBatch(ctx context.Context, cfgs []Config) ([]*Result, error) {
	return s.exec.RunContext(ctx, s.jobs(cfgs))
}

// Stream evaluates the configurations and delivers the results in config
// order over the returned channel, each as soon as it and all its
// predecessors are available. The channel closes after the last item. On
// cancellation the completed prefix is still delivered in order, the
// remaining configs arrive as items carrying the context's error, and
// the channel closes promptly.
func (s *Session) Stream(ctx context.Context, cfgs []Config) <-chan BatchItem {
	return s.exec.StreamContext(ctx, s.jobs(cfgs))
}

// StreamSharded evaluates the configurations like Stream, but splits the
// batch across the given number of shards — independent single-worker
// executions of contiguous ranges of the deduplicated evaluation list —
// and merges the partial results back into config order. The output is
// byte-identical to Stream at any shard count: the batch is expanded and
// deduplicated globally BEFORE sharding, so every evaluation derives its
// machine seed from the same batch index (the lowest index sharing its
// content key) a single-process run would use, and the shared session
// cache keys on exactly the same (content, seed) pairs. Today the shards
// are an in-process worker pool; the merge path is the one a
// multi-process fan-out would use, which is why the global-dedupe step
// lives here and not in the shards.
func (s *Session) StreamSharded(ctx context.Context, cfgs []Config, shards int) <-chan BatchItem {
	jobs := s.jobs(cfgs)

	// Global dedupe, exactly as a whole-batch submission would do it:
	// first appearance of a content key is the representative, and its
	// batch index seeds the evaluation for every duplicate.
	type unit struct {
		rep     int
		indices []int
	}
	byKey := make(map[sched.Key]*unit, len(jobs))
	var units []*unit
	for i := range jobs {
		k := sched.KeyOf(jobs[i])
		u := byKey[k]
		if u == nil {
			u = &unit{rep: i}
			byKey[k] = u
			units = append(units, u)
		}
		u.indices = append(u.indices, i)
	}

	if shards < 1 {
		shards = 1
	}
	if shards > len(units) {
		shards = len(units)
	}

	out := make(chan BatchItem, len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}

	// Each shard is one single-worker executor over a contiguous range of
	// units, sharing the session's cache and root seed. Completed units
	// fan their item out to every duplicate index; a sequencer delivers
	// the slots in config order, progressively.
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	ready := make([]bool, len(jobs))
	items := make([]BatchItem, len(jobs))
	deliver := func(u *unit, it BatchItem) {
		mu.Lock()
		for _, idx := range u.indices {
			slot := it
			slot.Index = idx
			if idx != u.rep && it.Result != nil {
				slot.Result = it.Result.Clone()
			}
			items[idx] = slot
			ready[idx] = true
		}
		cond.Broadcast()
		mu.Unlock()
	}

	base, rem := len(units)/shards, len(units)%shards
	start := 0
	for w := 0; w < shards; w++ {
		size := base
		if w < rem {
			size++
		}
		part := units[start : start+size]
		start += size
		exec := sched.New(sched.Options{Workers: 1, RootSeed: s.seed, Cache: s.cache})
		go func(part []*unit) {
			ijobs := make([]sched.IndexedJob, len(part))
			for i, u := range part {
				ijobs[i] = sched.IndexedJob{Job: jobs[u.rep], Index: u.rep}
			}
			for it := range exec.StreamIndexed(ctx, ijobs) {
				deliver(part[it.Index], it)
			}
		}(part)
	}

	go func() {
		defer close(out)
		for i := range jobs {
			mu.Lock()
			for !ready[i] {
				cond.Wait()
			}
			it := items[i]
			mu.Unlock()
			out <- it
		}
	}()
	return out
}

// RunSweep expands the sweep into its config family and evaluates it like
// RunBatch; results are in the sweep's deterministic expansion order.
func (s *Session) RunSweep(ctx context.Context, sw *Sweep) ([]*Result, error) {
	cfgs, err := sw.Configs()
	if err != nil {
		return nil, err
	}
	return s.RunBatch(ctx, cfgs)
}

// StreamSweep expands the sweep and streams its results like Stream.
func (s *Session) StreamSweep(ctx context.Context, sw *Sweep) (<-chan BatchItem, error) {
	cfgs, err := sw.Configs()
	if err != nil {
		return nil, err
	}
	return s.Stream(ctx, cfgs), nil
}

// NewMachine builds a fresh simulated machine of the session's CPU model,
// seeded with the session's root seed — for tools that need direct
// machine access, like the simulated kernel module (internal/kmod).
func (s *Session) NewMachine() (*Machine, error) {
	return s.cpu.NewMachine(s.seed)
}

// NewRunner builds a fresh machine plus a runner in the session's mode —
// for the case-study tools that drive a runner directly (the cache
// analysis tools take a Runner; serial instruction sweeps share one).
func (s *Session) NewRunner() (*Runner, error) {
	m, err := s.NewMachine()
	if err != nil {
		return nil, err
	}
	return nano.NewRunner(m, s.mode)
}

// CacheStats reports the session cache's lookup hits and misses (zeros
// when caching is disabled).
func (s *Session) CacheStats() (hits, misses uint64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Stats()
}

// CacheInfo returns a snapshot of the session cache's occupancy and
// lookup counters (the zero value when caching is disabled).
func (s *Session) CacheInfo() BatchCacheInfo {
	if s.cache == nil {
		return BatchCacheInfo{}
	}
	return s.cache.Info()
}

// jobs lifts configs into scheduler jobs, applying the session's default
// warm-up count to configs that leave WarmUpCount at zero and the
// session's sample-retention policy.
func (s *Session) jobs(cfgs []Config) []BatchJob {
	jobs := make([]BatchJob, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.WarmUpCount == 0 {
			cfg.WarmUpCount = s.warmUp
		}
		if s.dropSamples {
			cfg.DropSamples = true
		}
		jobs[i] = BatchJob{CPU: s.cpu.Name, Mode: s.mode, Cfg: cfg}
	}
	return jobs
}
